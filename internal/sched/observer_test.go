package sched

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// TestMultipleMissesOnePeriod: several task misses inside one period
// count once against PeriodMisses but individually against TotalMisses
// and the per-task aggregates.
func TestMultipleMissesOnePeriod(t *testing.T) {
	tr := NewTracker(100 * time.Millisecond)
	tr.BeginPeriod()
	tr.Run("a", func() time.Duration { return 150 * time.Millisecond }) // misses
	tr.Run("b", func() time.Duration { return 10 * time.Millisecond })  // skipped: budget gone
	tr.EndPeriod()
	tr.BeginPeriod()
	tr.Run("a", func() time.Duration { return 60 * time.Millisecond })
	tr.Run("b", func() time.Duration { return 60 * time.Millisecond }) // pushes past deadline
	tr.EndPeriod()

	st := tr.Stats()
	if st.PeriodMisses != 2 {
		t.Errorf("PeriodMisses = %d, want 2", st.PeriodMisses)
	}
	if st.TotalMisses != 2 {
		t.Errorf("TotalMisses = %d, want 2", st.TotalMisses)
	}
	if got := st.Task("a").Misses; got != 1 {
		t.Errorf("task a misses = %d, want 1", got)
	}
	if got := st.Task("b").Misses; got != 1 {
		t.Errorf("task b misses = %d, want 1", got)
	}
	if got := st.Task("b").Skips; got != 1 {
		t.Errorf("task b skips = %d, want 1", got)
	}
}

// TestExactBudgetThenSkip: a task consuming exactly the budget is not a
// miss, but it leaves nothing for the rest of the period.
func TestExactBudgetThenSkip(t *testing.T) {
	tr := NewTracker(100 * time.Millisecond)
	tr.BeginPeriod()
	if !tr.Run("a", func() time.Duration { return 100 * time.Millisecond }) {
		t.Fatal("task a should run")
	}
	if tr.Run("b", func() time.Duration { return time.Nanosecond }) {
		t.Fatal("task b should be skipped at an exhausted budget")
	}
	tr.EndPeriod()
	st := tr.Stats()
	if st.TotalMisses != 0 || st.PeriodMisses != 0 {
		t.Errorf("exact budget counted as miss: %+v", st)
	}
	if st.TotalSkips != 1 {
		t.Errorf("TotalSkips = %d, want 1", st.TotalSkips)
	}
}

// TestMissRateZeroPeriods: MissRate is defined (0) before any period.
func TestMissRateZeroPeriods(t *testing.T) {
	var s Stats
	if got := s.MissRate(); got != 0 {
		t.Fatalf("MissRate() = %v, want 0", got)
	}
}

// logObserver appends one line per event.
type logObserver struct{ events []string }

func (l *logObserver) PeriodStarted(index int, start time.Duration) {
	l.events = append(l.events, fmt.Sprintf("period %d start=%v", index, start))
}
func (l *logObserver) TaskStarted(name string, start time.Duration) {
	l.events = append(l.events, fmt.Sprintf("start %s at=%v", name, start))
}
func (l *logObserver) TaskRan(name string, start, dur time.Duration, missed bool) {
	l.events = append(l.events, fmt.Sprintf("ran %s at=%v dur=%v missed=%v", name, start, dur, missed))
}
func (l *logObserver) TaskSkipped(name string, at time.Duration) {
	l.events = append(l.events, fmt.Sprintf("skip %s at=%v", name, at))
}
func (l *logObserver) PeriodEnded(index int, used time.Duration, missed bool) {
	l.events = append(l.events, fmt.Sprintf("period %d end used=%v missed=%v", index, used, missed))
}

// TestObserverEventStream pins the exact event sequence, including
// virtual start offsets across an overrun (the schedule slips by the
// overrun, and observer times must slip with it).
func TestObserverEventStream(t *testing.T) {
	tr := NewTracker(100 * time.Millisecond)
	obs := &logObserver{}
	tr.Observer = obs

	tr.BeginPeriod()
	tr.Run("a", func() time.Duration { return 130 * time.Millisecond }) // overruns by 30ms
	tr.Run("b", func() time.Duration { return time.Millisecond })       // skipped
	tr.EndPeriod()
	tr.BeginPeriod() // starts at 130ms: 100ms period stretched by the 30ms overrun
	tr.Run("a", func() time.Duration { return 20 * time.Millisecond })
	tr.EndPeriod()

	want := []string{
		"period 0 start=0s",
		"start a at=0s",
		"ran a at=0s dur=130ms missed=true",
		"skip b at=130ms",
		"period 0 end used=130ms missed=true",
		"period 1 start=130ms",
		"start a at=130ms",
		"ran a at=130ms dur=20ms missed=false",
		"period 1 end used=20ms missed=false",
	}
	if !reflect.DeepEqual(obs.events, want) {
		t.Errorf("event stream mismatch:\ngot:  %q\nwant: %q", obs.events, want)
	}
}

// TestObserverDoesNotChangeStats: the same schedule produces identical
// statistics with and without an observer attached.
func TestObserverDoesNotChangeStats(t *testing.T) {
	run := func(obs Observer) *Stats {
		tr := NewTracker(100 * time.Millisecond)
		tr.Observer = obs
		durs := []time.Duration{40, 70, 110, 0, 100, 25}
		for i, d := range durs {
			tr.BeginPeriod()
			tr.Run("t1", func() time.Duration { return d * time.Millisecond })
			if i%2 == 1 {
				tr.Run("t23", func() time.Duration { return 50 * time.Millisecond })
			}
			tr.EndPeriod()
		}
		return tr.Stats()
	}
	plain := run(nil)
	observed := run(&logObserver{})
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("observer changed statistics:\nwithout: %+v\nwith:    %+v", plain, observed)
	}
}
