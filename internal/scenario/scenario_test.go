package scenario

import (
	"strings"
	"testing"

	"repro/internal/airspace"
	"repro/internal/rng"
)

// TestUniformBitCompatible is the contract the whole PR rests on: the
// uniform family consumes the rng stream draw for draw like
// airspace.NewWorld, so every golden measurement recorded before this
// package existed is reproduced bit-exactly.
func TestUniformBitCompatible(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		for _, seed := range []uint64{0, 1, 2018} {
			want := airspace.NewWorld(n, rng.New(seed))
			spec := DefaultSpec(Uniform)
			got := spec.Generate(n, rng.New(seed))
			if len(got.Aircraft) != len(want.Aircraft) {
				t.Fatalf("n=%d seed=%d: %d aircraft, want %d", n, seed, len(got.Aircraft), len(want.Aircraft))
			}
			for i := range want.Aircraft {
				if got.Aircraft[i] != want.Aircraft[i] {
					t.Fatalf("n=%d seed=%d aircraft %d differs:\n got  %+v\n want %+v",
						n, seed, i, got.Aircraft[i], want.Aircraft[i])
				}
			}
		}
	}
}

func TestParseSpecDefaults(t *testing.T) {
	for _, f := range Families() {
		spec, err := ParseSpec(string(f))
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", f, err)
		}
		if spec != DefaultSpec(f) {
			t.Errorf("ParseSpec(%q) = %+v, want the family defaults %+v", f, spec, DefaultSpec(f))
		}
	}
	spec, err := ParseSpec("")
	if err != nil || spec.Family != Uniform {
		t.Errorf("ParseSpec(\"\") = %+v, %v; want the uniform defaults", spec, err)
	}
}

func TestParseSpecValues(t *testing.T) {
	spec, err := ParseSpec("circle:radius=50,speed=250,altspread=500")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Radius != 50 || spec.Speed != 250 || spec.AltSpread != 500 || spec.Alt != 20000 {
		t.Errorf("parsed %+v, want radius=50 speed=250 altspread=500 and default alt", spec)
	}
	spec, err = ParseSpec("streams:streams=6,angle=30")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Streams != 6 || spec.AngleDeg != 30 || spec.Spacing != 6 {
		t.Errorf("parsed %+v, want streams=6 angle=30 and default spacing", spec)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		spec, wantSub string
	}{
		{"warp", "unknown family"},
		{":radius=5", "empty family"},
		{"circle:radius", "want key=value"},
		{"circle:=5", "want key=value"},
		{"circle:waves=3", "unknown key"},
		{"circle:radius=5,radius=6", "duplicate key"},
		{"circle:radius=abc", "bad number"},
		{"circle:radius=1e999", "bad number"},
		{"circle:radius=NaN", "bad number"},
		{"streams:streams=2.5", "bad integer"},
		{"circle:radius=-4", "radius must be"},
		{"circle:radius=0", "radius must be"},
		{"circle:speed=9000", "speed must be"},
		{"circle:alt=200,altspread=0", "altitudes span"},
		{"streams:streams=0", "streams must be"},
		{"streams:angle=0", "angle must be"},
		{"streams:spacing=1", "spacing must be"},
		{"streams:lanegap=200", "lanegap must be"},
		{"dense:clusters=0", "clusters must be"},
		{"dense:radius=120", "radius must be"},
		{"layers:bands=0", "bands must be"},
		{"layers:gap=-5", "gap must be"},
		{"layers:bands=60,gap=2000", "bands span"},
		{"burst:waves=0", "waves must be"},
		{"burst:interval=0", "interval must be"},
		{"burst:alt=39000,waves=4", "wave altitudes span"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q): no error, want one containing %q", c.spec, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseSpec(%q) = %q, want substring %q", c.spec, err, c.wantSub)
		}
	}
}

// TestStringCanonical checks the cache-key property: the canonical
// form prints every key, and parsing it round-trips exactly.
func TestStringCanonical(t *testing.T) {
	for _, text := range []string{
		"", "uniform", "circle", "circle:radius=50", "circle:speed=250,radius=50",
		"streams:angle=60", "dense:clusters=3", "layers:bands=2", "burst:waves=2",
	} {
		spec, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		canon := spec.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("ParseSpec(%q) (canonical of %q): %v", canon, text, err)
		}
		if again != spec {
			t.Errorf("round trip of %q via %q: %+v != %+v", text, canon, again, spec)
		}
		if again.String() != canon {
			t.Errorf("canonical form of %q not a fixed point: %q -> %q", text, canon, again.String())
		}
	}
	// Differently spelled specs of the same workload share one
	// canonical form.
	a, _ := ParseSpec("circle")
	b, _ := ParseSpec("circle:radius=100")
	if a.String() != b.String() {
		t.Errorf("canonical forms differ for the same workload: %q vs %q", a.String(), b.String())
	}
}

// TestValidateCapacity covers the n-dependent rejections: workloads
// that cannot fit the setup area must fail Validate, not scatter
// aircraft outside the field.
func TestValidateCapacity(t *testing.T) {
	spec := DefaultSpec(Streams)
	if err := spec.Validate(1000); err != nil {
		t.Errorf("streams defaults at n=1000 should fit: %v", err)
	}
	if err := spec.Validate(20000); err == nil {
		t.Error("streams defaults at n=20000 should exceed lane capacity")
	} else if !strings.Contains(err.Error(), "lanes") {
		t.Errorf("streams overflow error = %q, want a lane-capacity message", err)
	}
	spec = DefaultSpec(Burst)
	if err := spec.Validate(1000); err != nil {
		t.Errorf("burst defaults at n=1000 should fit: %v", err)
	}
	if err := spec.Validate(50000); err == nil {
		t.Error("burst defaults at n=50000 should exceed field depth")
	} else if !strings.Contains(err.Error(), "farthest wave") {
		t.Errorf("burst overflow error = %q, want a field-depth message", err)
	}
	if err := spec.Validate(-1); err == nil {
		t.Error("negative n should fail Validate")
	}
}

// TestGenerateDeterministic: same spec, same seed, same world — twice.
func TestGenerateDeterministic(t *testing.T) {
	for _, f := range Families() {
		spec := DefaultSpec(f)
		a := spec.Generate(500, rng.New(7))
		b := spec.Generate(500, rng.New(7))
		for i := range a.Aircraft {
			if a.Aircraft[i] != b.Aircraft[i] {
				t.Fatalf("%s: aircraft %d differs between identical generations", f, i)
			}
		}
	}
}

// TestGeneratedWorldsWellFormed: every family produces aircraft inside
// the field, with sequential IDs, in-range altitudes and speeds, and
// clean conflict bookkeeping.
func TestGeneratedWorldsWellFormed(t *testing.T) {
	for _, f := range Families() {
		spec := DefaultSpec(f)
		for _, n := range []int{0, 1, 3, 800} {
			w := spec.Generate(n, rng.New(2018))
			if w.N() != n {
				t.Fatalf("%s n=%d: got %d aircraft", f, n, w.N())
			}
			for i := range w.Aircraft {
				a := &w.Aircraft[i]
				if a.ID != int32(i) {
					t.Fatalf("%s n=%d: aircraft %d has ID %d", f, n, i, a.ID)
				}
				if !airspace.InField(a.X, a.Y) {
					t.Errorf("%s n=%d: aircraft %d starts outside the field at (%g, %g)", f, n, i, a.X, a.Y)
				}
				if a.Alt < airspace.AltMin || a.Alt > airspace.AltMax {
					t.Errorf("%s n=%d: aircraft %d altitude %g outside [%g, %g]", f, n, i, a.Alt, airspace.AltMin, airspace.AltMax)
				}
				if s := a.SpeedKnots(); s < airspace.SpeedMin-1e-6 || s > airspace.SpeedMax+1e-6 {
					t.Errorf("%s n=%d: aircraft %d speed %g kt outside [%g, %g]", f, n, i, s, airspace.SpeedMin, airspace.SpeedMax)
				}
				if a.Col || a.ColWith != airspace.NoConflict || a.TimeTill != airspace.SafeTime ||
					a.RMatch != airspace.MatchNone || a.BatX != a.DX || a.BatY != a.DY ||
					a.ExpX != a.X || a.ExpY != a.Y {
					t.Errorf("%s n=%d: aircraft %d bookkeeping not at setup defaults: %+v", f, n, i, *a)
				}
			}
		}
	}
}
